//! Lock-free metric cells: sharded counters and log-bucketed histograms.
//!
//! Hot paths (the Hogwild SGD loop runs tens of millions of samples per
//! second) must be able to bump a counter without contending on a shared
//! cache line. Each [`CounterCell`] therefore holds a small array of
//! cache-line-padded atomics; every thread is assigned one shard
//! round-robin on first use and all its increments stay on that line.
//! Reads sum the shards, which is exact for quiescent counters and at
//! worst momentarily stale for live ones — both fine for telemetry.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independent cache lines per counter. 16 covers the thread
/// counts the paper's scalability study uses (Fig. 12 stops at 16).
const SHARDS: usize = 16;

/// One cache line holding one shard's partial count.
#[repr(align(64))]
struct Shard(AtomicU64);

/// Round-robin shard assignment, one slot per thread for its lifetime.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    INDEX.with(|i| *i)
}

/// A monotonically increasing counter, safe to bump from any thread.
pub(crate) struct CounterCell {
    shards: [Shard; SHARDS],
}

impl CounterCell {
    pub(crate) fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Shard(AtomicU64::new(0))),
        }
    }

    pub(crate) fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    pub(crate) fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Cheap cloneable handle to a registered counter.
///
/// Obtain one with [`crate::counter`]; hold it across a hot loop instead of
/// re-resolving the name each iteration.
#[derive(Clone)]
pub struct Counter {
    pub(crate) cell: Arc<CounterCell>,
}

impl Counter {
    /// Adds `n` to the counter (relaxed; never blocks).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.add(n);
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn incr(&self) {
        self.cell.add(1);
    }

    /// Current total across all threads.
    pub fn value(&self) -> u64 {
        self.cell.value()
    }
}

/// Bucket count for [`HistogramCell`]: one bucket per power of two plus a
/// zero bucket (`u64::MAX` has 64 significant bits).
pub(crate) const HIST_BUCKETS: usize = 65;

/// Index of the log2 bucket covering `v`: 0 for 0, otherwise the number of
/// significant bits (so bucket `i` covers `[2^(i-1), 2^i - 1]`).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A histogram over `u64` samples with power-of-two buckets.
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub(crate) fn load(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot::from_buckets(
            name.to_string(),
            buckets,
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// Cheap cloneable handle to a registered histogram.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) name: String,
    pub(crate) cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one sample (relaxed; never blocks).
    #[inline]
    pub fn record(&self, v: u64) {
        self.cell.record(v);
    }

    /// Point-in-time summary of everything recorded so far.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.load(&self.name)
    }
}

/// Frozen view of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Frozen view of one histogram. Quantiles are upper bounds of the
/// power-of-two bucket containing the quantile, so they are exact only up
/// to a factor of two — enough to tell "3 mean-shift iterations" from
/// "300".
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
    /// Raw log2 bucket counts (index = significant bits of the sample);
    /// kept so snapshots can be diffed exactly.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub(crate) fn from_buckets(name: String, buckets: Vec<u64>, sum: u64, max: u64) -> Self {
        let count: u64 = buckets.iter().sum();
        let mean = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
        Self {
            name,
            count,
            sum,
            mean,
            p50: quantile(&buckets, count, 0.50),
            p95: quantile(&buckets, count, 0.95),
            p99: quantile(&buckets, count, 0.99),
            max,
            buckets,
        }
    }

    /// The part of `self` that happened after `earlier` was taken.
    /// `max` cannot be diffed (it is a running max) and is carried over.
    pub(crate) fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        HistogramSnapshot::from_buckets(
            self.name.clone(),
            buckets,
            self.sum.saturating_sub(earlier.sum),
            self.max,
        )
    }
}

/// Upper bound of the bucket holding quantile `q` of the distribution.
fn quantile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // Bucket i covers [2^(i-1), 2^i - 1]; bucket 0 is exactly zero.
            return if i == 0 { 0 } else { (1u64 << i) - 1 };
        }
    }
    u64::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let cell = Arc::new(CounterCell::new());
        let counter = Counter { cell };
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = counter.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 80_000);
        counter.cell.reset();
        assert_eq!(counter.value(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram {
            name: "t".into(),
            cell: Arc::new(HistogramCell::new()),
        };
        h.record(0);
        for _ in 0..99 {
            h.record(3);
        }
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 101);
        assert_eq!(s.sum, 99 * 3 + 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.p50, 3); // bucket [2,3]
        assert!(s.p95 <= 3, "p95 {} should sit in the [2,3] bucket", s.p95);
        assert!(s.p99 >= s.p95, "p99 {} must dominate p95 {}", s.p99, s.p95);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[2], 99);
    }

    #[test]
    fn histogram_diff_subtracts_buckets() {
        let h = Histogram {
            name: "d".into(),
            cell: Arc::new(HistogramCell::new()),
        };
        h.record(5);
        let before = h.snapshot();
        h.record(5);
        h.record(7);
        let delta = h.snapshot().diff(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 12);
    }

    #[test]
    fn bucket_of_matches_doc() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }
}
