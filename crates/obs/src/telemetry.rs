//! `RunTelemetry`: the frozen result of one pipeline run, built from
//! registry snapshots, renderable as a human-readable stage tree and as a
//! single JSON object suitable for storing alongside model results.

use crate::json::{push_f64, push_key, push_str_literal};
use crate::metrics::{CounterSnapshot, HistogramSnapshot};
use crate::registry::{snapshot, Snapshot, PATH_SEP};

/// One node of the aggregated span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Leaf name (last path component), e.g. `core.fit.train`.
    pub name: String,
    /// Times a span with this path closed.
    pub count: u64,
    /// Total seconds spent inside, across all closures.
    pub seconds: f64,
    pub children: Vec<SpanNode>,
}

/// Telemetry captured over a bounded piece of work (typically one
/// `pipeline::fit` call or one bench run).
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Wall-clock seconds covered by this capture.
    pub wall_seconds: f64,
    /// Root spans observed during the capture, with nested children.
    pub spans: Vec<SpanNode>,
    /// Counter totals accumulated during the capture.
    pub counters: Vec<CounterSnapshot>,
    /// Histogram summaries accumulated during the capture.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RunTelemetry {
    /// Everything the registry has seen since process start (or the last
    /// [`crate::reset`]).
    pub fn capture() -> Self {
        Self::from_snapshot_pair(None, snapshot())
    }

    /// Only what happened after `baseline` was taken — the right call for
    /// isolating one run when the process does several.
    pub fn since(baseline: &Snapshot) -> Self {
        Self::from_snapshot_pair(Some(baseline), snapshot())
    }

    fn from_snapshot_pair(baseline: Option<&Snapshot>, now: Snapshot) -> Self {
        let wall_seconds = now.elapsed_s - baseline.map_or(0.0, |b| b.elapsed_s);

        let spans: Vec<(String, u64, u64)> = now
            .spans
            .iter()
            .filter_map(|(path, stat)| {
                let prior = baseline
                    .and_then(|b| b.spans.iter().find(|(p, _)| p == path))
                    .map(|(_, s)| *s)
                    .unwrap_or_default();
                let count = stat.count - prior.count;
                let total_ns = stat.total_ns - prior.total_ns;
                (count > 0).then(|| (path.clone(), count, total_ns))
            })
            .collect();

        let counters: Vec<CounterSnapshot> = now
            .counters
            .iter()
            .filter_map(|c| {
                let prior = baseline
                    .and_then(|b| b.counters.iter().find(|p| p.name == c.name))
                    .map_or(0, |p| p.value);
                let value = c.value.saturating_sub(prior);
                (value > 0).then(|| CounterSnapshot {
                    name: c.name.clone(),
                    value,
                })
            })
            .collect();

        let histograms: Vec<HistogramSnapshot> = now
            .histograms
            .iter()
            .filter_map(|h| {
                let delta = match baseline.and_then(|b| b.histograms.iter().find(|p| p.name == h.name)) {
                    Some(prior) => h.diff(prior),
                    None => h.clone(),
                };
                (delta.count > 0).then_some(delta)
            })
            .collect();

        Self {
            wall_seconds,
            spans: build_tree(&spans),
            counters,
            histograms,
        }
    }

    /// Renders the span tree with per-stage totals, e.g.
    ///
    /// ```text
    /// core.fit                      1x   12.31s
    ///   core.fit.hotspot            1x    0.84s
    ///   core.fit.train              1x   10.02s
    /// ```
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for root in &self.spans {
            render_node(&mut out, root, 0);
        }
        out
    }

    /// Serializes the whole capture as one compact JSON object:
    ///
    /// ```json
    /// {"wall_seconds":..,"spans":[{"name":..,"count":..,"seconds":..,
    ///  "children":[..]}],"counters":[{"name":..,"value":..}],
    ///  "histograms":[{"name":..,"count":..,"sum":..,"mean":..,
    ///  "p50":..,"p95":..,"p99":..,"max":..}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_key(&mut out, "wall_seconds");
        push_f64(&mut out, self.wall_seconds);
        out.push(',');
        push_key(&mut out, "spans");
        push_span_array(&mut out, &self.spans);
        out.push(',');
        push_key(&mut out, "counters");
        out.push('[');
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_counter(&mut out, c);
        }
        out.push(']');
        out.push(',');
        push_key(&mut out, "histograms");
        out.push('[');
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_histogram(&mut out, h);
        }
        out.push_str("]}");
        out
    }
}

pub(crate) fn push_counter(out: &mut String, c: &CounterSnapshot) {
    out.push('{');
    push_key(out, "name");
    push_str_literal(out, &c.name);
    out.push(',');
    push_key(out, "value");
    out.push_str(&c.value.to_string());
    out.push('}');
}

pub(crate) fn push_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push('{');
    push_key(out, "name");
    push_str_literal(out, &h.name);
    for (key, value) in [("count", h.count), ("sum", h.sum)] {
        out.push(',');
        push_key(out, key);
        out.push_str(&value.to_string());
    }
    out.push(',');
    push_key(out, "mean");
    push_f64(out, h.mean);
    for (key, value) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99), ("max", h.max)] {
        out.push(',');
        push_key(out, key);
        out.push_str(&value.to_string());
    }
    out.push('}');
}

fn push_span_array(out: &mut String, nodes: &[SpanNode]) {
    out.push('[');
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_key(out, "name");
        push_str_literal(out, &n.name);
        out.push(',');
        push_key(out, "count");
        out.push_str(&n.count.to_string());
        out.push(',');
        push_key(out, "seconds");
        push_f64(out, n.seconds);
        out.push(',');
        push_key(out, "children");
        push_span_array(out, &n.children);
        out.push('}');
    }
    out.push(']');
}

/// Builds the nested tree from flat `(path, count, total_ns)` rows. Paths
/// arrive sorted, so a child (`a>b`) always follows its parent (`a`); a
/// child whose parent never closed during the capture becomes a root.
fn build_tree(flat: &[(String, u64, u64)]) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, count, total_ns) in flat {
        let components: Vec<&str> = path.split(PATH_SEP).collect();
        let node = SpanNode {
            name: components.last().unwrap().to_string(),
            count: *count,
            seconds: *total_ns as f64 / 1e9,
            children: Vec::new(),
        };
        insert(&mut roots, &components, node);
    }
    roots
}

fn insert(siblings: &mut Vec<SpanNode>, components: &[&str], node: SpanNode) {
    if components.len() == 1 {
        siblings.push(node);
        return;
    }
    match siblings.iter_mut().find(|s| s.name == components[0]) {
        Some(parent) => insert(&mut parent.children, &components[1..], node),
        // Parent path never closed during this capture: attach at this
        // level rather than dropping the measurement.
        None => siblings.push(node),
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    out.push_str(&format!(
        "{label:<44} {:>6}x {:>9.3}s\n",
        node.count, node.seconds
    ));
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(path: &str, count: u64, ns: u64) -> (String, u64, u64) {
        (path.to_string(), count, ns)
    }

    #[test]
    fn tree_nests_children_under_parents() {
        let flat = vec![
            row("fit", 1, 5_000_000_000),
            row("fit>graph", 1, 1_000_000_000),
            row("fit>graph>edges", 4, 400_000_000),
            row("fit>train", 1, 3_000_000_000),
        ];
        let tree = build_tree(&flat);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "fit");
        assert_eq!(tree[0].children.len(), 2);
        assert_eq!(tree[0].children[0].name, "graph");
        assert_eq!(tree[0].children[0].children[0].name, "edges");
        assert_eq!(tree[0].children[0].children[0].count, 4);
    }

    #[test]
    fn orphan_child_becomes_root() {
        let flat = vec![row("a>b", 2, 1_000)];
        let tree = build_tree(&flat);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "b");
    }

    #[test]
    fn render_shows_counts_and_seconds() {
        let flat = vec![row("fit", 1, 2_500_000_000), row("fit>train", 3, 1_500_000_000)];
        let telemetry = RunTelemetry {
            wall_seconds: 2.5,
            spans: build_tree(&flat),
            counters: vec![],
            histograms: vec![],
        };
        let text = telemetry.render_tree();
        assert!(text.contains("fit"), "{text}");
        assert!(text.contains("  train"), "{text}");
        assert!(text.contains("3x"), "{text}");
        assert!(text.contains("1.500s"), "{text}");
    }

    #[test]
    fn json_shape_is_stable() {
        let telemetry = RunTelemetry {
            wall_seconds: 1.25,
            spans: build_tree(&[row("fit", 1, 1_000_000_000)]),
            counters: vec![CounterSnapshot {
                name: "embed.samples".into(),
                value: 42,
            }],
            histograms: vec![HistogramSnapshot::from_buckets(
                "hotspot.iters".into(),
                {
                    let mut b = vec![0u64; crate::metrics::HIST_BUCKETS];
                    b[2] = 5;
                    b
                },
                15,
                3,
            )],
        };
        let json = telemetry.to_json();
        assert!(json.starts_with("{\"wall_seconds\":1.250000"), "{json}");
        assert!(json.contains("\"name\":\"fit\",\"count\":1"), "{json}");
        assert!(json.contains("\"name\":\"embed.samples\",\"value\":42"), "{json}");
        assert!(json.contains("\"p50\":3"), "{json}");
        assert!(json.ends_with("}"), "{json}");
    }
}
