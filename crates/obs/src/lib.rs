//! `actor-obs` — zero-dependency telemetry for the ACTOR pipeline.
//!
//! Three primitives, one global registry:
//!
//! * **Spans** — RAII guards timing a stage. Spans opened while another
//!   span is open on the same thread nest under it, and closed spans
//!   aggregate by nesting path into a stage tree:
//!
//!   ```
//!   let _fit = obs::span!("core.fit");
//!   {
//!       let _stage = obs::span!("core.fit.hotspot");
//!       // ... detect hotspots ...
//!   } // recorded as core.fit > core.fit.hotspot
//!   ```
//!
//! * **Counters & histograms** — lock-free cells safe to bump from the
//!   Hogwild hot loop. Counters shard across cache lines per thread;
//!   histograms use power-of-two buckets:
//!
//!   ```
//!   let samples = obs::counter("embed.hogwild.samples");
//!   samples.add(1024);
//!   obs::histogram("hotspot.meanshift.iterations").record(17);
//!   ```
//!
//! * **Live progress** — [`Reporter::from_env`] starts a background thread
//!   when `ACTOR_OBS_INTERVAL_MS` is set, printing one stderr line per
//!   tick (deepest open span + counter rates) and appending JSONL
//!   snapshots when `ACTOR_OBS_JSON` names a file.
//!
//! At the end of a run, [`RunTelemetry`] freezes everything into a value
//! that renders as a stage tree ([`RunTelemetry::render_tree`]) or
//! serializes to JSON ([`RunTelemetry::to_json`]) for storage alongside
//! results. See `docs/OBSERVABILITY.md` for naming conventions and the
//! JSONL schema.
//!
//! The crate depends on the standard library alone so every other crate in
//! the workspace can depend on it without cycles or build-cost concerns.

mod json;
mod metrics;
mod registry;
mod report;
mod telemetry;

pub use metrics::{Counter, CounterSnapshot, Histogram, HistogramSnapshot};
pub use registry::{
    counter, histogram, reset, snapshot, ActiveSpan, Snapshot, Span, SpanStat, PATH_SEP,
};
pub use report::{Reporter, ENV_INTERVAL, ENV_JSON};
pub use telemetry::{RunTelemetry, SpanNode};

/// Opens a [`Span`] named by the argument. Equivalent to [`span()`]; the
/// macro form exists so call sites read as annotations:
///
/// ```
/// let _guard = obs::span!("stgraph.build");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Opens a [`Span`]; it records itself when dropped. Prefer holding the
/// guard in a `let` binding named for the reader (`_fit`, `_stage`), not
/// `_`, which would drop it immediately.
pub fn span(name: &str) -> Span {
    registry::enter(name)
}
