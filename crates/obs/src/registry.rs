//! The global telemetry registry and RAII spans.
//!
//! Spans form a tree by *runtime nesting*: a span opened while another span
//! is open on the same thread becomes its child. The registry aggregates
//! closed spans by their full nesting path (components joined with `>`), so
//! a stage executed many times — e.g. `core.fit.train` once per `fit` call —
//! accumulates a call count and total duration rather than a new entry.
//!
//! Span bookkeeping takes a mutex, so spans are for *stages* (tens per
//! run), not per-sample work; hot loops use [`crate::Counter`] instead.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::metrics::{Counter, CounterCell, CounterSnapshot, Histogram, HistogramCell, HistogramSnapshot};

/// Separator between nested span names in an aggregated path.
pub const PATH_SEP: char = '>';

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times a span with this path closed.
    pub count: u64,
    /// Total time spent inside, summed over all closures.
    pub total_ns: u64,
}

/// A span that is open right now somewhere in the process.
#[derive(Debug, Clone)]
pub struct ActiveSpan {
    /// Full nesting path of the open span.
    pub path: String,
    /// When it was opened.
    pub start: Instant,
}

pub(crate) struct Registry {
    pub(crate) start: Instant,
    spans: Mutex<HashMap<String, SpanStat>>,
    counters: Mutex<HashMap<String, Arc<CounterCell>>>,
    histograms: Mutex<HashMap<String, Arc<HistogramCell>>>,
    active: Mutex<HashMap<u64, ActiveSpan>>,
    next_span_id: AtomicU64,
}

pub(crate) fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        start: Instant::now(),
        spans: Mutex::new(HashMap::new()),
        counters: Mutex::new(HashMap::new()),
        histograms: Mutex::new(HashMap::new()),
        active: Mutex::new(HashMap::new()),
        next_span_id: AtomicU64::new(1),
    })
}

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one timed stage. Created by [`crate::span`] /
/// [`crate::span!`]; recording happens on drop (or explicitly via
/// [`Span::finish`] when the caller wants the duration back).
///
/// Not `Send`: a span must close on the thread that opened it, because the
/// nesting stack is thread-local.
pub struct Span {
    path: String,
    start: Instant,
    id: u64,
    recorded: bool,
    _not_send: PhantomData<*const ()>,
}

pub(crate) fn enter(name: &str) -> Span {
    debug_assert!(
        !name.contains(PATH_SEP),
        "span name `{name}` must not contain `{PATH_SEP}` (reserved as the path separator)"
    );
    let reg = global();
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_string());
        stack.join(&PATH_SEP.to_string())
    });
    let start = Instant::now();
    let id = reg.next_span_id.fetch_add(1, Ordering::Relaxed);
    reg.active.lock().unwrap().insert(
        id,
        ActiveSpan {
            path: path.clone(),
            start,
        },
    );
    Span {
        path,
        start,
        id,
        recorded: false,
        _not_send: PhantomData,
    }
}

impl Span {
    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The full nesting path (`parent>child>...`) this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Closes the span now and returns how long it was open.
    pub fn finish(mut self) -> Duration {
        self.record();
        self.start.elapsed()
    }

    fn record(&mut self) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        let elapsed = self.start.elapsed();
        let reg = global();
        reg.active.lock().unwrap().remove(&self.id);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(
                stack.last().map(String::as_str),
                self.path.rsplit(PATH_SEP).next(),
                "spans must close in LIFO order"
            );
            stack.pop();
        });
        let mut spans = reg.spans.lock().unwrap();
        let stat = spans.entry(self.path.clone()).or_default();
        stat.count += 1;
        stat.total_ns += elapsed.as_nanos() as u64;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// Returns the counter registered under `name`, creating it on first use.
pub fn counter(name: &str) -> Counter {
    let mut counters = global().counters.lock().unwrap();
    let cell = counters
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(CounterCell::new()));
    Counter { cell: Arc::clone(cell) }
}

/// Returns the histogram registered under `name`, creating it on first use.
pub fn histogram(name: &str) -> Histogram {
    let mut histograms = global().histograms.lock().unwrap();
    let cell = histograms
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(HistogramCell::new()));
    Histogram {
        name: name.to_string(),
        cell: Arc::clone(cell),
    }
}

/// Point-in-time view of the whole registry. Sorted by name/path so output
/// and JSON are deterministic.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Seconds since the registry was first touched in this process.
    pub elapsed_s: f64,
    /// Closed-span aggregates, keyed by full nesting path.
    pub spans: Vec<(String, SpanStat)>,
    pub counters: Vec<CounterSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
    /// Spans open at the moment of the snapshot, with seconds open.
    pub active: Vec<(String, f64)>,
}

/// Takes a consistent-enough snapshot of all spans, counters, histograms,
/// and currently open spans. Counter reads are relaxed, so a concurrently
/// incremented counter may be up to one tick stale — acceptable for
/// telemetry.
pub fn snapshot() -> Snapshot {
    let reg = global();
    let mut spans: Vec<(String, SpanStat)> = reg
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));

    let mut counters: Vec<CounterSnapshot> = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(name, cell)| CounterSnapshot {
            name: name.clone(),
            value: cell.value(),
        })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));

    let mut histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(name, cell)| cell.load(name))
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    let mut active: Vec<(String, f64)> = reg
        .active
        .lock()
        .unwrap()
        .values()
        .map(|a| (a.path.clone(), a.start.elapsed().as_secs_f64()))
        .collect();
    active.sort_by(|a, b| a.0.cmp(&b.0));

    Snapshot {
        elapsed_s: reg.start.elapsed().as_secs_f64(),
        spans,
        counters,
        histograms,
        active,
    }
}

/// Zeroes all recorded data: span aggregates are cleared, counter and
/// histogram cells are reset **in place** so handles held by callers keep
/// working. Spans that are open right now are unaffected and will record
/// into the cleared map when they close.
pub fn reset() {
    let reg = global();
    reg.spans.lock().unwrap().clear();
    for cell in reg.counters.lock().unwrap().values() {
        cell.reset();
    }
    for cell in reg.histograms.lock().unwrap().values() {
        cell.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_the_cell() {
        let a = counter("registry.test.shared");
        let b = counter("registry.test.shared");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        assert_eq!(b.value(), 7);
    }

    #[test]
    fn spans_nest_and_aggregate_by_path() {
        {
            let _outer = enter("registry.test.outer");
            for _ in 0..3 {
                let _inner = enter("inner");
            }
        }
        let snap = snapshot();
        let stat = |path: &str| {
            snap.spans
                .iter()
                .find(|(p, _)| p == path)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| panic!("no span {path} in {:?}", snap.spans))
        };
        assert_eq!(stat("registry.test.outer").count, 1);
        let inner = stat("registry.test.outer>inner");
        assert_eq!(inner.count, 3);
        assert!(stat("registry.test.outer").total_ns >= inner.total_ns);
    }

    #[test]
    fn active_spans_visible_until_dropped() {
        let span = enter("registry.test.active");
        assert!(
            snapshot().active.iter().any(|(p, _)| p == "registry.test.active"),
            "open span should appear in the active list"
        );
        drop(span);
        assert!(!snapshot()
            .active
            .iter()
            .any(|(p, _)| p == "registry.test.active"));
    }

    #[test]
    fn finish_returns_elapsed_and_records_once() {
        let span = enter("registry.test.finish");
        let d = span.finish();
        assert!(d.as_nanos() > 0);
        let snap = snapshot();
        let (_, stat) = snap
            .spans
            .iter()
            .find(|(p, _)| p == "registry.test.finish")
            .unwrap();
        assert_eq!(stat.count, 1);
    }
}
