//! The live progress reporter: a background thread that snapshots the
//! registry at a fixed interval and emits
//!
//! * one human-readable line per tick to stderr, showing the deepest open
//!   span and the rate of every counter that moved, and
//! * when a JSONL path is configured, one machine-readable snapshot object
//!   per tick appended to that file (schema in `docs/OBSERVABILITY.md`).
//!
//! Controlled by two environment variables:
//!
//! * `ACTOR_OBS_INTERVAL_MS` — tick interval; unset or unparsable disables
//!   the reporter entirely.
//! * `ACTOR_OBS_JSON` — path to append JSONL snapshots to.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::{push_f64, push_key, push_str_literal};
use crate::registry::{snapshot, Snapshot};
use crate::telemetry::push_histogram;

/// Environment variable selecting the reporting interval in milliseconds.
pub const ENV_INTERVAL: &str = "ACTOR_OBS_INTERVAL_MS";
/// Environment variable selecting the JSONL output path.
pub const ENV_JSON: &str = "ACTOR_OBS_JSON";

/// Handle to the running reporter thread; dropping it stops the thread
/// after at most ~50 ms and flushes a final snapshot.
pub struct Reporter {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Starts a reporter if [`ENV_INTERVAL`] is set to a positive integer;
    /// returns `None` (no thread, zero cost) otherwise.
    pub fn from_env() -> Option<Reporter> {
        let interval_ms: u64 = std::env::var(ENV_INTERVAL).ok()?.trim().parse().ok()?;
        if interval_ms == 0 {
            return None;
        }
        let json_path = std::env::var(ENV_JSON).ok().map(PathBuf::from);
        Some(Self::start(Duration::from_millis(interval_ms), json_path))
    }

    /// Starts a reporter unconditionally with the given interval, appending
    /// JSONL snapshots to `json_path` when provided.
    pub fn start(interval: Duration, json_path: Option<PathBuf>) -> Reporter {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("actor-obs-reporter".into())
            .spawn(move || run_loop(interval, json_path, &stop_flag))
            .expect("spawn obs reporter thread");
        Reporter {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn run_loop(interval: Duration, json_path: Option<PathBuf>, stop: &AtomicBool) {
    let mut sink = json_path.as_ref().and_then(|p| {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
            .map_err(|e| eprintln!("[obs] cannot open {}: {e}", p.display()))
            .ok()
    });
    let mut prev = snapshot();
    while !stop.load(Ordering::Relaxed) {
        // Sleep in short slices so Drop never waits a full interval.
        let mut remaining = interval;
        while !remaining.is_zero() && !stop.load(Ordering::Relaxed) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
        let now = snapshot();
        emit_tick(&prev, &now, sink.as_mut());
        prev = now;
    }
    // Final snapshot so short phases between the last tick and shutdown
    // still appear in the record.
    let now = snapshot();
    emit_tick(&prev, &now, sink.as_mut());
}

fn emit_tick(prev: &Snapshot, now: &Snapshot, sink: Option<&mut File>) {
    eprintln!("{}", human_line(prev, now));
    if let Some(f) = sink {
        let _ = writeln!(f, "{}", json_line(prev, now));
        let _ = f.flush();
    }
}

/// `[obs +12.3s] core.fit>embed.train (4.1s) | embed.hogwild.samples 1.2M (+310.0k/s)`
fn human_line(prev: &Snapshot, now: &Snapshot) -> String {
    let dt = (now.elapsed_s - prev.elapsed_s).max(1e-9);
    let mut line = format!("[obs +{:.1}s]", now.elapsed_s);

    // The deepest open span is the most specific statement of "what the
    // process is doing right now".
    match now
        .active
        .iter()
        .max_by_key(|(path, _)| path.matches(crate::registry::PATH_SEP).count())
    {
        Some((path, open_s)) => {
            line.push_str(&format!(" {path} ({open_s:.1}s)"));
        }
        None => line.push_str(" idle"),
    }

    for c in &now.counters {
        let before = prev
            .counters
            .iter()
            .find(|p| p.name == c.name)
            .map_or(0, |p| p.value);
        let delta = c.value.saturating_sub(before);
        if delta > 0 {
            line.push_str(&format!(
                " | {} {} (+{}/s)",
                c.name,
                si(c.value),
                si((delta as f64 / dt) as u64)
            ));
        }
    }
    line
}

/// One JSONL snapshot object (`"type":"snapshot"`).
fn json_line(prev: &Snapshot, now: &Snapshot) -> String {
    let dt = (now.elapsed_s - prev.elapsed_s).max(1e-9);
    let mut out = String::from("{");
    push_key(&mut out, "type");
    push_str_literal(&mut out, "snapshot");
    out.push(',');
    push_key(&mut out, "elapsed_s");
    push_f64(&mut out, now.elapsed_s);
    out.push(',');
    push_key(&mut out, "active");
    out.push('[');
    for (i, (path, open_s)) in now.active.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_key(&mut out, "path");
        push_str_literal(&mut out, path);
        out.push(',');
        push_key(&mut out, "open_s");
        push_f64(&mut out, *open_s);
        out.push('}');
    }
    out.push(']');
    out.push(',');
    push_key(&mut out, "counters");
    out.push('[');
    let mut first = true;
    for c in &now.counters {
        let before = prev
            .counters
            .iter()
            .find(|p| p.name == c.name)
            .map_or(0, |p| p.value);
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        push_key(&mut out, "name");
        push_str_literal(&mut out, &c.name);
        out.push(',');
        push_key(&mut out, "value");
        out.push_str(&c.value.to_string());
        out.push(',');
        push_key(&mut out, "rate_per_s");
        push_f64(&mut out, c.value.saturating_sub(before) as f64 / dt);
        out.push('}');
    }
    out.push(']');
    out.push(',');
    push_key(&mut out, "histograms");
    out.push('[');
    for (i, h) in now.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_histogram(&mut out, h);
    }
    out.push_str("]}");
    out
}

/// Compact SI formatting: 1234567 → "1.2M".
fn si(v: u64) -> String {
    match v {
        0..=999 => v.to_string(),
        1_000..=999_999 => format!("{:.1}k", v as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}M", v as f64 / 1e6),
        _ => format!("{:.1}G", v as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_formatting() {
        assert_eq!(si(999), "999");
        assert_eq!(si(1_500), "1.5k");
        assert_eq!(si(2_400_000), "2.4M");
        assert_eq!(si(3_000_000_000), "3.0G");
    }

    #[test]
    fn reporter_stops_on_drop() {
        let reporter = Reporter::start(Duration::from_millis(10), None);
        std::thread::sleep(Duration::from_millis(30));
        drop(reporter); // must not hang
    }

    #[test]
    fn json_line_is_wellformed_prefix() {
        let prev = snapshot();
        crate::counter("report.test.ticks").add(5);
        let now = snapshot();
        let line = json_line(&prev, &now);
        assert!(line.starts_with("{\"type\":\"snapshot\""), "{line}");
        assert!(line.ends_with("]}"), "{line}");
        assert!(line.contains("report.test.ticks"), "{line}");
    }
}
