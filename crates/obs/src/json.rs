//! Minimal JSON emission. The obs crate is dependency-free by design, so
//! the handful of JSON shapes it emits (telemetry dumps and reporter
//! snapshot lines) are written by hand here. Only emission — parsing lives
//! with the consumers of the JSONL files.

use std::fmt::Write;

/// Appends `s` as a JSON string literal (quotes included) to `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` as a JSON number. Non-finite values (which valid
/// telemetry never produces) are emitted as `null` rather than corrupting
/// the document.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.6}");
    } else {
        out.push_str("null");
    }
}

/// Appends `"key":` to `out`.
pub(crate) fn push_key(out: &mut String, key: &str) {
    push_str_literal(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_literal(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_are_finite_or_null() {
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        s.push(' ');
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "1.500000 null");
    }
}
