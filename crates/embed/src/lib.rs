//! Negative-sampling SGD embedding engine (paper §5.2.2–5.2.3).
//!
//! The ACTOR objective is optimized exactly as in LINE/word2vec: sample an
//! edge, treat one endpoint as the *center* and the other as the
//! *context*, push the center's vector toward the context's context-vector
//! and away from `K` noise vectors (Eq. 7), with the closed-form gradients
//! of Eqs. 8–10 and the asynchronous (Hogwild, \[45\]) update scheme of
//! Eqs. 12–14.
//!
//! Crate layout:
//!
//! * [`math`] — f32 vector kernels (dot, cosine, axpy),
//! * [`sigmoid`] — the precomputed σ lookup table word2vec uses,
//! * [`store`] — center/context matrices with lock-free shared mutation
//!   behind an explicit Hogwild contract,
//! * [`sgd`] — the per-edge negative-sampling update,
//! * [`hogwild`] — scoped-thread parallel driver,
//! * [`mod@line`] — LINE (first/second order) for arbitrary weighted graphs:
//!   the user-layer pre-trainer of Algorithm 1 line 3 and the LINE
//!   baseline of Table 2.

pub mod hogwild;
pub mod line;
pub mod math;
pub mod sgd;
pub mod sigmoid;
pub mod store;

pub use line::{LineOrder, LineParams, LineTrainer};
pub use sgd::{NegativeSamplingUpdate, SgdParams};
pub use store::{EmbeddingStore, Matrix, NormalizedRows, StoreDelta};
