//! Center/context embedding matrices with Hogwild-style shared mutation.
//!
//! The paper optimizes with asynchronous SGD \[45\]: worker threads update
//! shared parameter rows *without locks*, accepting benign races because
//! individual updates are sparse and small. In Rust this is expressed by a
//! [`Matrix`] whose storage sits in an `UnsafeCell` with a manual `Sync`
//! impl; mutation goes through [`Matrix::row_mut_racy`], whose contract is
//! documented below.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::Rng;

/// A dense row-major `n × dim` f32 matrix supporting racy shared writes.
///
/// # Hogwild safety contract
///
/// `row_mut_racy` hands out `&mut [f32]` aliasing other threads' views.
/// This is sound *in practice* under the Hogwild conditions (sparse,
/// bounded updates; torn f32 reads never propagate beyond one SGD step and
/// cannot cause memory unsafety because `f32` is plain-old-data and rows
/// never change length). All unsafety is confined to numeric content —
/// no pointers, lengths, or invariants depend on the racy values.
///
/// # Dirty-row tracking
///
/// Every mutable row access ([`Matrix::row_mut`], [`Matrix::row_mut_racy`],
/// [`Matrix::set_row`], [`Matrix::init_uniform`]) stamps the touched row
/// with the matrix's current *write generation* (one relaxed atomic store —
/// noise next to the row update itself). [`EmbeddingStore::drain_dirty`]
/// closes the open generation and collects every row stamped after a given
/// sync point, which is what lets publishers ship only the rows a
/// streaming step actually changed. Stamps are bookkeeping, not data: they
/// are not serialized, and a deserialized matrix starts with a fresh
/// tracker (consumers must treat a store they have never synced with as
/// fully dirty).
#[derive(Debug)]
pub struct Matrix {
    n: usize,
    dim: usize,
    data: UnsafeCell<Vec<f32>>,
    /// Open write generation; starts at 1 so stamp 0 means "never touched".
    generation: AtomicU64,
    /// Per-row last-touch generation.
    stamps: Vec<AtomicU64>,
}

// SAFETY: see the Hogwild contract above — races only affect f32 payloads.
unsafe impl Sync for Matrix {}

fn fresh_stamps(n: usize) -> Vec<AtomicU64> {
    let mut stamps = Vec::with_capacity(n);
    stamps.resize_with(n, || AtomicU64::new(0));
    stamps
}

impl Matrix {
    /// Allocates an `n × dim` zero matrix.
    pub fn zeros(n: usize, dim: usize) -> Self {
        Self {
            n,
            dim,
            data: UnsafeCell::new(vec![0.0; n * dim]),
            generation: AtomicU64::new(1),
            stamps: fresh_stamps(n),
        }
    }

    /// Stamps row `i` with the open write generation (relaxed: the stamp
    /// only has to become visible by the next quiescent `drain_dirty`,
    /// and all drain callers are serialized with the writers they track).
    #[inline]
    fn mark(&self, i: usize) {
        self.stamps[i].store(self.generation.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable view of row `i`.
    ///
    /// May observe concurrent writes under Hogwild; callers treat values
    /// as approximate during training.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.n, "row {i} out of {}", self.n);
        unsafe {
            let v = &*self.data.get();
            &v[i * self.dim..(i + 1) * self.dim]
        }
    }

    /// Racy mutable view of row `i` (Hogwild update target).
    ///
    /// # Safety
    ///
    /// Callers must only read/write f32 values within the row and must not
    /// hold the reference across calls that could reallocate (none exist:
    /// the buffer is never resized after construction).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut_racy(&self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.n);
        self.mark(i);
        let v = &mut *self.data.get();
        &mut v[i * self.dim..(i + 1) * self.dim]
    }

    /// Exclusive mutable view (no races possible through `&mut self`).
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.n);
        self.mark(i);
        let dim = self.dim;
        &mut self.data.get_mut()[i * dim..(i + 1) * dim]
    }

    /// Fills the matrix with `U(-0.5/dim, 0.5/dim)` noise (the word2vec /
    /// LINE initialization).
    pub fn init_uniform<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let half = 0.5 / self.dim as f32;
        for x in self.data.get_mut().iter_mut() {
            *x = rng.random_range(-half..half);
        }
        for i in 0..self.n {
            self.mark(i);
        }
    }

    /// Copies `src` into row `i`.
    pub fn set_row(&mut self, i: usize, src: &[f32]) {
        assert_eq!(src.len(), self.dim);
        self.row_mut(i).copy_from_slice(src);
    }

    /// The open write generation (rows touched now get this stamp).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Closes the open generation and returns it; subsequent touches
    /// stamp `closed + 1`.
    pub(crate) fn close_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed)
    }

    /// Forces the generation counter (checkpoint restore continuity).
    pub(crate) fn set_generation(&self, generation: u64) {
        self.generation.store(generation.max(1), Ordering::Relaxed);
    }

    /// Rows stamped strictly after `since` — i.e. touched in any
    /// generation a sync at `since` has not seen. Inclusion is
    /// conservative under concurrent writers: a row racing with the scan
    /// lands in this delta, the next one, or both, never in neither.
    pub(crate) fn rows_dirty_since(&self, since: u64) -> Vec<u32> {
        (0..self.n)
            .filter(|&i| self.stamps[i].load(Ordering::Relaxed) > since)
            .map(|i| i as u32)
            .collect()
    }

    /// Serialized size of this matrix in bytes.
    pub(crate) fn byte_len(&self) -> usize {
        16 + self.n * self.dim * 4
    }

    /// Appends the compact LE byte layout (`n`, `dim`, payload) to `buf`.
    /// Checkpointing serializes multi-megabyte stores on the training
    /// critical path, so the little-endian (i.e. every supported) target
    /// takes a single bulk copy instead of a per-element conversion.
    pub(crate) fn append_bytes(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.n as u64);
        buf.put_u64_le(self.dim as u64);
        let data = unsafe { &*self.data.get() };
        if cfg!(target_endian = "little") {
            // Safety: f32 has no invalid bit patterns and a native-LE
            // [f32] has exactly the `to_le_bytes` byte layout.
            let raw = unsafe {
                std::slice::from_raw_parts(data.as_ptr() as *const u8, data.len() * 4)
            };
            buf.put_slice(raw);
        } else {
            for &x in data.iter() {
                buf.put_f32_le(x);
            }
        }
    }

    /// Serializes to a compact LE byte layout: `n`, `dim`, then payload.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.byte_len());
        self.append_bytes(&mut buf);
        buf.freeze()
    }

    /// Deserializes from [`Matrix::to_bytes`] output.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.len() < 16 {
            return Err("matrix header truncated".into());
        }
        let n = bytes.get_u64_le() as usize;
        let dim = bytes.get_u64_le() as usize;
        let need = n
            .checked_mul(dim)
            .and_then(|e| e.checked_mul(4))
            .ok_or("matrix size overflow")?;
        if bytes.len() != need {
            return Err(format!("matrix payload {} != expected {need}", bytes.len()));
        }
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            data.push(bytes.get_f32_le());
        }
        Ok(Self {
            n,
            dim,
            data: UnsafeCell::new(data),
            generation: AtomicU64::new(1),
            stamps: fresh_stamps(n),
        })
    }
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        let stamps = self
            .stamps
            .iter()
            .map(|s| AtomicU64::new(s.load(Ordering::Relaxed)))
            .collect();
        Self {
            n: self.n,
            dim: self.dim,
            data: UnsafeCell::new(unsafe { (*self.data.get()).clone() }),
            generation: AtomicU64::new(self.generation.load(Ordering::Relaxed)),
            stamps,
        }
    }
}

/// The set of rows touched since a publish sync point, as produced by
/// [`EmbeddingStore::drain_dirty`].
///
/// `generation` is the sync point this delta closes: passing it back as
/// `since_gen` of the next `drain_dirty` call yields exactly the rows
/// touched after this one. Row lists are sorted and duplicate-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreDelta {
    /// Generation closed by the drain that produced this delta.
    pub generation: u64,
    /// Dirty center-matrix rows (global node indexes).
    pub centers: Vec<u32>,
    /// Dirty context-matrix rows (global node indexes).
    pub contexts: Vec<u32>,
}

impl StoreDelta {
    /// Total dirty rows across both matrices.
    pub fn dirty_rows(&self) -> usize {
        self.centers.len() + self.contexts.len()
    }

    /// True when no row changed since the sync point.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty() && self.contexts.is_empty()
    }
}

/// Paired center (`x`) and context (`x'`) matrices of §5.2.2.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    /// Center vectors `x_i`.
    pub centers: Matrix,
    /// Context vectors `x'_i`.
    pub contexts: Matrix,
}

impl EmbeddingStore {
    /// Allocates zeroed center/context matrices.
    pub fn zeros(n: usize, dim: usize) -> Self {
        Self {
            centers: Matrix::zeros(n, dim),
            contexts: Matrix::zeros(n, dim),
        }
    }

    /// Standard initialization: uniform noise for centers, zeros for
    /// contexts (word2vec's scheme; zero contexts make the first gradient
    /// of each edge purely attractive).
    pub fn init<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Self {
        let mut s = Self::zeros(n, dim);
        s.centers.init_uniform(rng);
        s
    }

    /// Number of embedded nodes.
    pub fn n_nodes(&self) -> usize {
        self.centers.n_rows()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.centers.dim()
    }

    /// The open write generation (both matrices advance in lockstep).
    pub fn generation(&self) -> u64 {
        debug_assert_eq!(self.centers.generation(), self.contexts.generation());
        self.centers.generation()
    }

    /// Forces the generation counter (checkpoint restore continuity).
    /// Stamps are untouched, so a restored store reports no dirty rows
    /// until it is written to again — resumed runs full-publish first.
    pub fn set_generation(&self, generation: u64) {
        self.centers.set_generation(generation);
        self.contexts.set_generation(generation);
    }

    /// Closes the open generation without scanning for dirty rows and
    /// returns it — the sync point to pass to a later [`drain_dirty`]
    /// call. Use this when the consumer is about to read the *whole*
    /// store anyway (a full publish) and only needs the cursor.
    ///
    /// [`drain_dirty`]: EmbeddingStore::drain_dirty
    pub fn close_generation(&self) -> u64 {
        let g = self.centers.close_generation();
        let g2 = self.contexts.close_generation();
        debug_assert_eq!(g, g2);
        g
    }

    /// Closes the open generation and returns every row touched since
    /// `since_gen` (a generation previously returned by this method or by
    /// [`EmbeddingStore::close_generation`]; pass 0 for "everything ever
    /// touched").
    ///
    /// The scan is exact when no writer is concurrent with the drain —
    /// true for every publisher in this codebase, which drains between
    /// training steps — and conservative (rows may repeat across deltas,
    /// never vanish) otherwise.
    pub fn drain_dirty(&self, since_gen: u64) -> StoreDelta {
        let generation = self.close_generation();
        StoreDelta {
            generation,
            centers: self.centers.rows_dirty_since(since_gen),
            contexts: self.contexts.rows_dirty_since(since_gen),
        }
    }

    /// Serializes both matrices.
    pub fn to_bytes(&self) -> Bytes {
        let c_len = self.centers.byte_len();
        let mut buf = BytesMut::with_capacity(8 + c_len + self.contexts.byte_len());
        buf.put_u64_le(c_len as u64);
        self.centers.append_bytes(&mut buf);
        self.contexts.append_bytes(&mut buf);
        buf.freeze()
    }

    /// Deserializes from [`EmbeddingStore::to_bytes`] output.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.len() < 8 {
            return Err("store header truncated".into());
        }
        let c_len = bytes.get_u64_le() as usize;
        if bytes.len() < c_len {
            return Err("store centers truncated".into());
        }
        let c = bytes.split_to(c_len);
        let centers = Matrix::from_bytes(c)?;
        let contexts = Matrix::from_bytes(bytes)?;
        if centers.n_rows() != contexts.n_rows() || centers.dim() != contexts.dim() {
            return Err("center/context shape mismatch".into());
        }
        Ok(Self { centers, contexts })
    }
}

/// A read-only unit-normalized copy of a matrix's rows.
///
/// Serving ranks candidates by cosine similarity; normalizing every row
/// *once* at snapshot build turns each per-candidate cosine into a plain
/// dot product ([`crate::math::dot_unit`]). The copy is immutable and
/// detached from the live (possibly Hogwild-mutated) training matrix, so
/// readers see a frozen, torn-write-free view.
#[derive(Debug, Clone)]
pub struct NormalizedRows {
    data: Vec<f32>,
    n: usize,
    dim: usize,
}

impl NormalizedRows {
    /// Copies and unit-normalizes every row of `m` (zero rows stay zero).
    pub fn from_matrix(m: &Matrix) -> Self {
        let (n, dim) = (m.n_rows(), m.dim());
        let mut data = vec![0.0f32; n * dim];
        for i in 0..n {
            crate::math::normalize_into(m.row(i), &mut data[i * dim..(i + 1) * dim]);
        }
        Self { data, n, dim }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The unit-normalized row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.n, "row {i} out of {}", self.n);
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Copies and unit-normalizes every row of the row-major flat `data`
    /// (zero rows stay zero). Panics when `data` is ragged for `dim`.
    pub fn from_flat(data: &[f32], dim: usize) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "ragged flat rows");
        let n = data.len() / dim;
        let mut out = vec![0.0f32; n * dim];
        for i in 0..n {
            crate::math::normalize_into(
                &data[i * dim..(i + 1) * dim],
                &mut out[i * dim..(i + 1) * dim],
            );
        }
        Self { data: out, n, dim }
    }

    /// Re-normalizes just `rows` from the (same-shaped) source matrix,
    /// leaving every other row bit-identical — the delta counterpart of
    /// [`NormalizedRows::from_matrix`] used by incremental snapshot
    /// application.
    pub fn refresh_rows(&mut self, m: &Matrix, rows: &[u32]) {
        assert_eq!(m.n_rows(), self.n, "row count mismatch");
        assert_eq!(m.dim(), self.dim, "dim mismatch");
        for &r in rows {
            let i = r as usize;
            assert!(i < self.n, "row {i} out of {}", self.n);
            crate::math::normalize_into(m.row(i), &mut self.data[i * self.dim..(i + 1) * self.dim]);
        }
    }

    /// [`NormalizedRows::refresh_rows`] over a row-major flat source
    /// instead of a [`Matrix`].
    pub fn refresh_rows_from_flat(&mut self, data: &[f32], rows: &[u32]) {
        assert_eq!(data.len(), self.n * self.dim, "shape mismatch");
        for &r in rows {
            let i = r as usize;
            assert!(i < self.n, "row {i} out of {}", self.n);
            crate::math::normalize_into(
                &data[i * self.dim..(i + 1) * self.dim],
                &mut self.data[i * self.dim..(i + 1) * self.dim],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rows_are_disjoint_and_indexed() {
        let mut m = Matrix::zeros(3, 4);
        m.set_row(1, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(0), &[0.0; 4]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.dim(), 4);
    }

    #[test]
    #[should_panic]
    fn row_bounds_checked() {
        let m = Matrix::zeros(2, 2);
        m.row(2);
    }

    #[test]
    fn init_uniform_is_small_and_nonzero() {
        let mut m = Matrix::zeros(10, 8);
        let mut rng = StdRng::seed_from_u64(1);
        m.init_uniform(&mut rng);
        let bound = 0.5 / 8.0;
        let mut any_nonzero = false;
        for i in 0..10 {
            for &x in m.row(i) {
                assert!(x.abs() <= bound);
                any_nonzero |= x != 0.0;
            }
        }
        assert!(any_nonzero);
    }

    #[test]
    fn racy_mut_access_is_usable_across_threads() {
        let m = Matrix::zeros(4, 16);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..1000 {
                        let row = unsafe { m.row_mut_racy(t) };
                        for x in row.iter_mut() {
                            *x += 1.0;
                        }
                    }
                });
            }
        });
        // Disjoint rows per thread: no races at all, exact counts.
        for t in 0..4 {
            assert!(m.row(t).iter().all(|&x| x == 1000.0));
        }
    }

    #[test]
    fn matrix_bytes_round_trip() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(0, &[1.0, -2.0, 3.5]);
        m.set_row(1, &[0.0, 0.25, -0.125]);
        let b = m.to_bytes();
        let m2 = Matrix::from_bytes(b).unwrap();
        assert_eq!(m2.row(0), m.row(0));
        assert_eq!(m2.row(1), m.row(1));
    }

    #[test]
    fn matrix_bytes_rejects_corruption() {
        let m = Matrix::zeros(2, 2);
        let b = m.to_bytes();
        assert!(Matrix::from_bytes(b.slice(0..8)).is_err());
        assert!(Matrix::from_bytes(b.slice(0..b.len() - 4)).is_err());
    }

    #[test]
    fn store_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = EmbeddingStore::init(5, 4, &mut rng);
        let b = s.to_bytes();
        let s2 = EmbeddingStore::from_bytes(b).unwrap();
        assert_eq!(s2.n_nodes(), 5);
        assert_eq!(s2.dim(), 4);
        for i in 0..5 {
            assert_eq!(s.centers.row(i), s2.centers.row(i));
            assert_eq!(s.contexts.row(i), s2.contexts.row(i));
        }
    }

    #[test]
    fn normalized_rows_are_unit_length_and_aligned() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = Matrix::zeros(6, 16);
        m.init_uniform(&mut rng);
        m.set_row(5, &[0.0; 16]); // a zero row must survive as zeros
        let norms = NormalizedRows::from_matrix(&m);
        assert_eq!(norms.n_rows(), 6);
        assert_eq!(norms.dim(), 16);
        for i in 0..5 {
            let len = crate::math::norm(norms.row(i));
            assert!((len - 1.0).abs() < 1e-5, "row {i} norm {len}");
            // Same direction as the source row.
            let cos = crate::math::cosine(m.row(i), norms.row(i));
            assert!((cos - 1.0).abs() < 1e-6);
        }
        assert!(norms.row(5).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dirty_tracker_captures_every_touch_and_drains_cleanly() {
        let mut rng = StdRng::seed_from_u64(11);
        let store = EmbeddingStore::init(64, 8, &mut rng);
        // init_uniform touched every center row; contexts were never written.
        let d0 = store.drain_dirty(0);
        assert_eq!(d0.centers.len(), 64);
        assert!(d0.contexts.is_empty());

        // Quiescent store: the next drain is empty.
        let d1 = store.drain_dirty(d0.generation);
        assert!(d1.is_empty(), "drain must reset: {d1:?}");
        assert!(d1.generation > d0.generation);

        // Concurrent hogwild touches are all captured.
        std::thread::scope(|s| {
            for t in 0..4usize {
                let store = &store;
                s.spawn(move || {
                    for k in 0..8 {
                        let row = unsafe { store.centers.row_mut_racy(t * 16 + k) };
                        row[0] += 1.0;
                        let ctx = unsafe { store.contexts.row_mut_racy(t * 16 + k * 2) };
                        ctx[0] -= 1.0;
                    }
                });
            }
        });
        let d2 = store.drain_dirty(d1.generation);
        let want_centers: Vec<u32> = (0..4u32)
            .flat_map(|t| (0..8).map(move |k| t * 16 + k))
            .collect();
        let want_contexts: Vec<u32> = (0..4u32)
            .flat_map(|t| (0..8).map(move |k| t * 16 + k * 2))
            .collect();
        assert_eq!(d2.centers, want_centers);
        assert_eq!(d2.contexts, want_contexts);
        assert_eq!(d2.dirty_rows(), 32 + 32);
        assert!(store.drain_dirty(d2.generation).is_empty());
    }

    #[test]
    fn dirty_tracker_survives_clone_but_not_serialization() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = EmbeddingStore::init(4, 4, &mut rng);
        let sync = store.drain_dirty(0).generation;
        store.centers.set_row(2, &[1.0, 0.0, 0.0, 0.0]);

        let cloned = store.clone();
        assert_eq!(cloned.drain_dirty(sync).centers, vec![2]);

        // Serialization drops the tracker: a restored store reports no
        // touches and must be treated as fully dirty by consumers.
        let restored = EmbeddingStore::from_bytes(store.to_bytes()).unwrap();
        assert_eq!(restored.generation(), 1);
        assert!(restored.drain_dirty(0).is_empty());
    }

    #[test]
    fn refresh_rows_matches_full_renormalize() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut m = Matrix::zeros(10, 8);
        m.init_uniform(&mut rng);
        let mut norms = NormalizedRows::from_matrix(&m);
        m.set_row(3, &[2.0; 8]);
        m.set_row(7, &[-1.0; 8]);
        norms.refresh_rows(&m, &[3, 7]);
        let full = NormalizedRows::from_matrix(&m);
        for i in 0..10 {
            assert_eq!(norms.row(i), full.row(i), "row {i}");
        }
    }

    #[test]
    fn store_init_contexts_are_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = EmbeddingStore::init(3, 4, &mut rng);
        for i in 0..3 {
            assert_eq!(s.contexts.row(i), &[0.0; 4]);
        }
    }
}
