//! Dense f32 vector kernels.
//!
//! Embeddings are `f32` (halving memory traffic relative to `f64`, the
//! dominant cost of SGD over large matrices); accumulations that feed
//! decisions (cosine ranking) widen to `f64`.

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in f64; 0 when either vector is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut ab, mut aa, mut bb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        ab += x as f64 * y as f64;
        aa += x as f64 * x as f64;
        bb += y as f64 * y as f64;
    }
    if aa == 0.0 || bb == 0.0 {
        0.0
    } else {
        ab / (aa.sqrt() * bb.sqrt())
    }
}

/// Writes the unit-normalized `src` into `dst`; a zero vector stays zero.
///
/// Normalizing once — at snapshot build or before a batch of queries —
/// turns every later cosine into a plain dot product ([`dot_unit`]), which
/// is the shared ranking kernel of the exact scan, the HNSW index, and the
/// neighbor-search path.
#[inline]
pub fn normalize_into(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    let n = norm(src);
    if n == 0.0 || !n.is_finite() {
        dst.fill(0.0);
    } else {
        let inv = 1.0 / n;
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = s * inv;
        }
    }
}

/// Dot product widened to f64 — on unit vectors this *is* the cosine
/// similarity, without the two norms [`cosine`] recomputes per call.
/// Callers must pre-normalize both sides (see [`normalize_into`]).
#[inline]
pub fn dot_unit(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as f64 * y as f64;
    }
    acc
}

/// Sums `vectors` element-wise into a fresh vector; the bag-of-words
/// representation of footnote 4. Returns zeros when `vectors` is empty.
pub fn sum_of(vectors: &[&[f32]], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    for v in vectors {
        axpy(1.0, v, &mut out);
    }
    out
}

/// Mean of `vectors`; zeros when empty.
pub fn mean_of(vectors: &[&[f32]], dim: usize) -> Vec<f32> {
    let mut out = sum_of(vectors, dim);
    if !vectors.is_empty() {
        let inv = 1.0 / vectors.len() as f32;
        for x in &mut out {
            *x *= inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0f32, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn cosine_basic_identities() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-9);
        assert!(cosine(&a, &b).abs() < 1e-9);
        let c = [-1.0f32, 0.0];
        assert!((cosine(&a, &c) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [0.3f32, -0.7, 0.2];
        let b = [1.5f32, 0.4, -0.9];
        let a2: Vec<f32> = a.iter().map(|x| x * 10.0).collect();
        assert!((cosine(&a, &b) - cosine(&a2, &b)).abs() < 1e-6);
    }

    #[test]
    fn normalize_into_produces_unit_vectors() {
        let src = [3.0f32, 4.0];
        let mut dst = [0.0f32; 2];
        normalize_into(&src, &mut dst);
        assert!((norm(&dst) - 1.0).abs() < 1e-6);
        assert!((dst[0] - 0.6).abs() < 1e-6);

        // Zero stays zero rather than becoming NaN.
        let mut z = [1.0f32; 2];
        normalize_into(&[0.0, 0.0], &mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn dot_unit_matches_cosine_after_normalization() {
        let a = [0.3f32, -0.7, 0.2, 1.1];
        let b = [1.5f32, 0.4, -0.9, 0.05];
        let (mut ua, mut ub) = ([0.0f32; 4], [0.0f32; 4]);
        normalize_into(&a, &mut ua);
        normalize_into(&b, &mut ub);
        assert!((dot_unit(&ua, &ub) - cosine(&a, &b)).abs() < 1e-6);
    }

    #[test]
    fn sum_and_mean() {
        let v1 = [1.0f32, 2.0];
        let v2 = [3.0f32, 4.0];
        assert_eq!(sum_of(&[&v1, &v2], 2), vec![4.0, 6.0]);
        assert_eq!(mean_of(&[&v1, &v2], 2), vec![2.0, 3.0]);
        assert_eq!(sum_of(&[], 2), vec![0.0, 0.0]);
        assert_eq!(mean_of(&[], 2), vec![0.0, 0.0]);
    }
}
