//! Precomputed sigmoid lookup table.
//!
//! Training evaluates σ(x) once per (edge, negative) pair — hundreds of
//! millions of times per run. A 1024-entry table over `[-6, 6]` (the
//! word2vec trick) replaces `exp` with one multiply and one load; outside
//! the range σ saturates to 0/1, which also caps gradients.

/// Table resolution.
const TABLE_SIZE: usize = 1024;
/// Clamp bound.
const MAX_X: f32 = 6.0;

/// The lookup table, built once.
#[derive(Debug, Clone)]
pub struct SigmoidTable {
    table: Vec<f32>,
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SigmoidTable {
    /// Builds the table.
    pub fn new() -> Self {
        let table = (0..TABLE_SIZE)
            .map(|i| {
                let x = (i as f32 / TABLE_SIZE as f32 * 2.0 - 1.0) * MAX_X;
                1.0 / (1.0 + (-x).exp())
            })
            .collect();
        Self { table }
    }

    /// σ(x), clamped to the table bounds.
    #[inline]
    pub fn value(&self, x: f32) -> f32 {
        if x >= MAX_X {
            1.0
        } else if x <= -MAX_X {
            0.0
        } else {
            let idx = ((x + MAX_X) / (2.0 * MAX_X) * TABLE_SIZE as f32) as usize;
            self.table[idx.min(TABLE_SIZE - 1)]
        }
    }
}

/// Exact sigmoid, used in tests and non-hot paths.
#[inline]
pub fn sigmoid_exact(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_within_table_resolution() {
        let t = SigmoidTable::new();
        let mut x = -5.9f32;
        while x < 5.9 {
            let got = t.value(x) as f64;
            let want = sigmoid_exact(x as f64);
            assert!((got - want).abs() < 0.01, "x={x}: {got} vs {want}");
            x += 0.037;
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let t = SigmoidTable::new();
        assert_eq!(t.value(100.0), 1.0);
        assert_eq!(t.value(-100.0), 0.0);
        assert_eq!(t.value(6.0), 1.0);
        assert_eq!(t.value(-6.0), 0.0);
    }

    #[test]
    fn midpoint_is_half() {
        let t = SigmoidTable::new();
        assert!((t.value(0.0) - 0.5).abs() < 0.01);
    }

    #[test]
    fn monotone() {
        let t = SigmoidTable::new();
        let mut prev = t.value(-6.0);
        let mut x = -5.9f32;
        while x <= 6.0 {
            let v = t.value(x);
            assert!(v + 1e-6 >= prev, "not monotone at {x}");
            prev = v;
            x += 0.1;
        }
    }
}
