//! LINE: large-scale information network embedding \[24\].
//!
//! Used twice in this reproduction: to pre-train the user interaction
//! graph (Algorithm 1, line 3) and as the LINE / LINE(U) baselines of
//! Table 2. Works on any homogeneous weighted edge list; first-order
//! preserves `σ(u_i·u_j)` over observed edges with a single vector set,
//! second-order is the skip-gram-style center/context formulation.

use rand::Rng;

use crate::hogwild;
use crate::sgd::{NegativeSamplingUpdate, SgdParams};
use crate::store::EmbeddingStore;
use stgraph::AliasTable;

/// Which proximity LINE preserves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOrder {
    /// First-order: vertices joined by strong edges embed nearby (one
    /// vector set).
    First,
    /// Second-order: vertices with similar neighborhoods embed nearby
    /// (center + context sets).
    Second,
}

/// LINE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LineParams {
    /// Embedding width.
    pub dim: usize,
    /// Total edge samples.
    pub samples: u64,
    /// Hogwild worker threads.
    pub threads: usize,
    /// Per-step SGD parameters.
    pub sgd: SgdParams,
    /// Proximity order.
    pub order: LineOrder,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LineParams {
    fn default() -> Self {
        Self {
            dim: 128,
            samples: 1_000_000,
            threads: 1,
            sgd: SgdParams::default(),
            order: LineOrder::Second,
            seed: 0x11E,
        }
    }
}

/// A LINE trainer over an undirected weighted edge list.
///
/// ```
/// use embed::{LineTrainer, LineParams, LineOrder};
///
/// // A triangle plus a pendant vertex.
/// let edges = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 0.5)];
/// let trainer = LineTrainer::new(4, &edges).unwrap();
/// let store = trainer.train(LineParams {
///     dim: 8,
///     samples: 20_000,
///     ..LineParams::default()
/// });
/// assert_eq!(store.n_nodes(), 4);
/// assert_eq!(store.dim(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct LineTrainer {
    n_nodes: usize,
    edges: Vec<(u32, u32)>,
    edge_alias: AliasTable,
    neg_nodes: Vec<u32>,
    neg_alias: AliasTable,
}

impl LineTrainer {
    /// Builds samplers for `edges` over `n_nodes` vertices. Returns `None`
    /// when the edge list is empty or weightless.
    pub fn new(n_nodes: usize, edges: &[(u32, u32, f64)]) -> Option<Self> {
        let weights: Vec<f64> = edges.iter().map(|&(_, _, w)| w).collect();
        let edge_alias = AliasTable::new(&weights)?;
        // Degree^{3/4} noise over vertices with positive degree.
        let mut degree = vec![0.0f64; n_nodes];
        for &(a, b, w) in edges {
            degree[a as usize] += w;
            degree[b as usize] += w;
        }
        let mut neg_nodes = Vec::new();
        let mut neg_weights = Vec::new();
        for (i, &d) in degree.iter().enumerate() {
            if d > 0.0 {
                neg_nodes.push(i as u32);
                neg_weights.push(d.powf(stgraph::sampler::NEGATIVE_POWER));
            }
        }
        let neg_alias = AliasTable::new(&neg_weights)?;
        Some(Self {
            n_nodes,
            edges: edges.iter().map(|&(a, b, _)| (a, b)).collect(),
            edge_alias,
            neg_nodes,
            neg_alias,
        })
    }

    /// Number of vertices.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Trains and returns the embedding store.
    ///
    /// For [`LineOrder::First`] only the `centers` matrix is meaningful;
    /// for [`LineOrder::Second`] centers are the vertex embeddings and
    /// contexts the context vectors, as in the paper.
    pub fn train(&self, params: LineParams) -> EmbeddingStore {
        let mut init_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(params.seed);
        let mut store = EmbeddingStore::init(self.n_nodes, params.dim, &mut init_rng);
        if params.order == LineOrder::First {
            // First-order shares one vector set; start contexts equal to
            // centers so σ(x_i·x_j) sees the same parameters on both sides.
            store.contexts = store.centers.clone();
        }
        self.train_into(&store, params);
        store
    }

    /// Trains into an existing store (used by the scalability bench to
    /// reuse allocations and by ACTOR's pre-initialized stores).
    pub fn train_into(&self, store: &EmbeddingStore, params: LineParams) {
        let _span = obs::span!("embed.line.train");
        let samples_done = obs::counter("embed.line.samples");
        hogwild::run(params.threads, params.samples, params.seed, |_, rng, n| {
            let mut upd = NegativeSamplingUpdate::new(params.dim, params.sgd);
            let lr0 = params.sgd.learning_rate;
            let mut flushed = 0u64;
            for i in 0..n {
                // Linear annealing to 10% of the initial rate (LINE's
                // schedule), tracked per thread. The same cadence batches
                // the live-progress counter flush.
                if n > 0 && i % 1024 == 0 {
                    let progress = i as f32 / n as f32;
                    upd.set_learning_rate(lr0 * (1.0 - 0.9 * progress));
                    if i > 0 {
                        samples_done.add(1024);
                        flushed += 1024;
                    }
                }
                let (mut a, mut b) = self.edges[self.edge_alias.sample(rng)];
                if rng.random::<bool>() {
                    std::mem::swap(&mut a, &mut b);
                }
                match params.order {
                    LineOrder::Second => {
                        upd.step(store, a as usize, b as usize, rng, |r| {
                            self.neg_nodes[self.neg_alias.sample(r)] as usize
                        });
                    }
                    LineOrder::First => {
                        // Same update with tied parameters: mirror the
                        // context step onto the center matrix afterwards
                        // is approximated by also training (b → a).
                        upd.step(store, a as usize, b as usize, rng, |r| {
                            self.neg_nodes[self.neg_alias.sample(r)] as usize
                        });
                        upd.step(store, b as usize, a as usize, rng, |r| {
                            self.neg_nodes[self.neg_alias.sample(r)] as usize
                        });
                    }
                }
            }
            samples_done.add(n - flushed);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::cosine;

    /// Two 4-cliques joined by one weak edge.
    fn two_cliques() -> Vec<(u32, u32, f64)> {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j, 5.0));
                }
            }
        }
        edges.push((0, 4, 0.2));
        edges
    }

    fn params(order: LineOrder) -> LineParams {
        LineParams {
            dim: 16,
            samples: 120_000,
            threads: 1,
            sgd: SgdParams {
                learning_rate: 0.05,
                negatives: 3,
                grad_clip: 0.0,
            },
            order,
            seed: 42,
        }
    }

    #[test]
    fn second_order_separates_cliques() {
        let t = LineTrainer::new(8, &two_cliques()).unwrap();
        let mut p = params(LineOrder::Second);
        p.samples = 400_000;
        let store = t.train(p);
        let intra = cosine(store.centers.row(0), store.centers.row(1));
        let inter = cosine(store.centers.row(0), store.centers.row(5));
        assert!(intra > inter + 0.1, "intra {intra} inter {inter}");
    }

    #[test]
    fn first_order_separates_cliques() {
        let t = LineTrainer::new(8, &two_cliques()).unwrap();
        let mut p = params(LineOrder::First);
        p.samples = 300_000;
        let store = t.train(p);
        let intra = cosine(store.centers.row(0), store.centers.row(2));
        let inter = cosine(store.centers.row(1), store.centers.row(6));
        assert!(intra > inter + 0.1, "intra {intra} inter {inter}");
    }

    #[test]
    fn empty_graph_returns_none() {
        assert!(LineTrainer::new(5, &[]).is_none());
        assert!(LineTrainer::new(5, &[(0, 1, 0.0)]).is_none());
    }

    #[test]
    fn multithreaded_training_still_learns() {
        let t = LineTrainer::new(8, &two_cliques()).unwrap();
        let mut p = params(LineOrder::Second);
        p.threads = 4;
        let store = t.train(p);
        let intra = cosine(store.centers.row(0), store.centers.row(1));
        let inter = cosine(store.centers.row(0), store.centers.row(5));
        assert!(intra > inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn single_thread_training_is_deterministic() {
        let t = LineTrainer::new(8, &two_cliques()).unwrap();
        let a = t.train(params(LineOrder::Second));
        let b = t.train(params(LineOrder::Second));
        assert_eq!(a.centers.row(3), b.centers.row(3));
    }
}
