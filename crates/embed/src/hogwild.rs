//! Scoped-thread Hogwild driver.
//!
//! Splits a sample budget across worker threads, each running the caller's
//! closure with its own deterministic RNG stream. Used by LINE
//! pre-training, the ACTOR trainer, and the scalability experiments of
//! Fig. 12.

use rand::{rngs::StdRng, SeedableRng};

/// Runs `total_samples` of work across `n_threads` workers.
///
/// `work(thread_id, rng, n_samples)` processes its shard with a per-thread
/// RNG seeded from `seed` and the thread id; shards differ by at most one
/// sample. Single-threaded runs are exactly reproducible per seed;
/// multi-threaded runs race benignly on the embedding matrices (by
/// design — see the Hogwild contract in [`crate::store::Matrix`]).
pub fn run<W>(n_threads: usize, total_samples: u64, seed: u64, work: W)
where
    W: Fn(usize, &mut StdRng, u64) + Sync,
{
    assert!(n_threads > 0, "need at least one thread");
    let base = total_samples / n_threads as u64;
    let extra = (total_samples % n_threads as u64) as usize;
    if n_threads == 1 {
        let mut rng = StdRng::seed_from_u64(seed);
        work(0, &mut rng, total_samples);
        return;
    }
    crossbeam::thread::scope(|s| {
        for t in 0..n_threads {
            let work = &work;
            let shard = base + u64::from(t < extra);
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64
                    .wrapping_mul(t as u64 + 1)));
                work(t, &mut rng, shard);
            });
        }
    })
    .expect("hogwild worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn shards_cover_total() {
        let counter = AtomicU64::new(0);
        run(4, 1003, 1, |_, _, n| {
            counter.fetch_add(n, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1003);
    }

    #[test]
    fn single_thread_gets_everything() {
        let counter = AtomicU64::new(0);
        run(1, 17, 2, |t, _, n| {
            assert_eq!(t, 0);
            counter.fetch_add(n, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn thread_rngs_differ() {
        use rand::Rng;
        let draws = std::sync::Mutex::new(Vec::new());
        run(3, 3, 7, |_, rng, _| {
            draws.lock().unwrap().push(rng.random::<u64>());
        });
        let d = draws.into_inner().unwrap();
        assert_eq!(d.len(), 3);
        assert_ne!(d[0], d[1]);
        assert_ne!(d[1], d[2]);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        run(0, 10, 0, |_, _, _| {});
    }
}
