//! Scoped-thread Hogwild driver.
//!
//! Splits a sample budget across worker threads, each running the caller's
//! closure with its own deterministic RNG stream. Used by LINE
//! pre-training, the ACTOR trainer, and the scalability experiments of
//! Fig. 12.

use rand::{rngs::StdRng, SeedableRng};

/// Runs `total_samples` of work across `n_threads` workers.
///
/// `work(thread_id, rng, n_samples)` processes its shard with a per-thread
/// RNG seeded from `seed` and the thread id; shards differ by at most one
/// sample. Single-threaded runs are exactly reproducible per seed;
/// multi-threaded runs race benignly on the embedding matrices (by
/// design — see the Hogwild contract in [`crate::store::Matrix`]).
///
/// # Contract: fewer samples than threads
///
/// When `total_samples < n_threads`, every thread is still spawned and
/// `work` is still invoked once per thread: the first `total_samples`
/// threads receive a shard of 1 and the rest receive a shard of **0**.
/// Closures must therefore tolerate `n_samples == 0` (an empty loop is the
/// expected handling). This keeps thread-id–derived RNG streams stable
/// across sample budgets, which the reproducibility tests rely on.
///
/// # Panics
///
/// Panics if `n_threads == 0`, or if any worker closure panics — the panic
/// is re-raised on the calling thread with a message naming the worker
/// (e.g. ``hogwild worker thread 3 of 8 panicked``) so a poisoned training
/// run is attributable to its shard.
pub fn run<W>(n_threads: usize, total_samples: u64, seed: u64, work: W)
where
    W: Fn(usize, &mut StdRng, u64) + Sync,
{
    assert!(n_threads > 0, "need at least one thread");
    let base = total_samples / n_threads as u64;
    let extra = (total_samples % n_threads as u64) as usize;
    debug_assert!(
        total_samples >= n_threads as u64 || base == 0,
        "shard math: with {total_samples} samples over {n_threads} threads \
         every shard is {base} or {}",
        base + 1
    );
    if n_threads == 1 {
        let mut rng = StdRng::seed_from_u64(seed);
        work(0, &mut rng, total_samples);
        return;
    }
    let threads = obs::counter("embed.hogwild.threads");
    // Worker panics are caught per thread and re-raised here with the
    // worker's id, so a poisoned training run names its shard instead of
    // dying with crossbeam's anonymous payload.
    let failures: std::sync::Mutex<Vec<(usize, String)>> = std::sync::Mutex::new(Vec::new());
    let result = crossbeam::thread::scope(|s| {
        for t in 0..n_threads {
            let work = &work;
            let threads = threads.clone();
            let failures = &failures;
            let shard = base + u64::from(t < extra);
            s.spawn(move |_| {
                threads.incr();
                let run_shard = std::panic::AssertUnwindSafe(|| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64
                        .wrapping_mul(t as u64 + 1)));
                    work(t, &mut rng, shard);
                });
                if let Err(payload) = std::panic::catch_unwind(run_shard) {
                    let detail = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&'static str>().copied())
                        .unwrap_or("<non-string panic payload>")
                        .to_string();
                    // A sibling worker panicking while holding this lock
                    // poisons it; the guard's data is still coherent
                    // (Vec::push never unwinds mid-write here), so recover
                    // the inner value instead of double-panicking.
                    failures
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((t, detail));
                }
            });
        }
    });
    // Scope-level failure without a recorded worker panic would mean the
    // spawn machinery itself failed; surface it rather than swallowing.
    result.expect("hogwild scope failed outside worker closures");
    let mut failures = failures.into_inner().unwrap_or_else(|e| e.into_inner());
    if !failures.is_empty() {
        failures.sort_unstable_by_key(|(t, _)| *t);
        let (t, detail) = &failures[0];
        panic!("hogwild worker thread {t} of {n_threads} panicked: {detail}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn shards_cover_total() {
        let counter = AtomicU64::new(0);
        run(4, 1003, 1, |_, _, n| {
            counter.fetch_add(n, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1003);
    }

    #[test]
    fn single_thread_gets_everything() {
        let counter = AtomicU64::new(0);
        run(1, 17, 2, |t, _, n| {
            assert_eq!(t, 0);
            counter.fetch_add(n, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn fewer_samples_than_threads_gives_empty_shards() {
        // 3 samples over 8 threads: every thread still runs, shards are
        // 1,1,1,0,0,0,0,0 (see the contract in the `run` docs).
        let calls = AtomicUsize::new(0);
        let total = AtomicU64::new(0);
        let zero_shards = AtomicUsize::new(0);
        run(8, 3, 5, |_, _, n| {
            calls.fetch_add(1, Ordering::Relaxed);
            total.fetch_add(n, Ordering::Relaxed);
            if n == 0 {
                zero_shards.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        assert_eq!(total.load(Ordering::Relaxed), 3);
        assert_eq!(zero_shards.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn zero_samples_is_a_no_op_per_thread() {
        let total = AtomicU64::new(0);
        run(4, 0, 9, |_, _, n| {
            total.fetch_add(n, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn thread_rngs_differ() {
        use rand::Rng;
        let draws = std::sync::Mutex::new(Vec::new());
        run(3, 3, 7, |_, rng, _| {
            draws.lock().unwrap().push(rng.random::<u64>());
        });
        let d = draws.into_inner().unwrap();
        assert_eq!(d.len(), 3);
        assert_ne!(d[0], d[1]);
        assert_ne!(d[1], d[2]);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        run(0, 10, 0, |_, _, _| {});
    }

    #[test]
    fn worker_panic_is_reraised_with_context() {
        let result = std::panic::catch_unwind(|| {
            run(4, 100, 1, |t, _, _| {
                if t == 2 {
                    panic!("shard 2 corrupt");
                }
            });
        });
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("hogwild worker thread 2 of 4 panicked"), "{msg}");
        assert!(msg.contains("shard 2 corrupt"), "{msg}");
    }

    #[test]
    fn two_concurrent_worker_panics_report_the_lowest_shard() {
        use std::sync::Barrier;
        // Both workers reach the barrier, then panic together — one of
        // them will find the failure mutex poisoned by the other. The
        // driver must still collect both reports and re-raise the
        // lowest-numbered shard deterministically.
        let barrier = Barrier::new(2);
        let result = std::panic::catch_unwind(|| {
            run(4, 100, 3, |t, _, _| {
                if t == 1 || t == 3 {
                    barrier.wait();
                    panic!("shard {t} corrupt");
                }
            });
        });
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("hogwild worker thread 1 of 4 panicked"), "{msg}");
        assert!(msg.contains("shard 1 corrupt"), "{msg}");
    }
}
