//! The per-edge negative-sampling SGD update (Eqs. 7–14).

use rand::Rng;

use crate::sigmoid::SigmoidTable;
use crate::store::EmbeddingStore;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdParams {
    /// Learning rate `η` (§5.2.3 treats sampled edge weights as equal and
    /// folds them into the rate).
    pub learning_rate: f32,
    /// Number of negative samples `K` (Eq. 7).
    pub negatives: usize,
    /// L2 ceiling on the per-step update applied to any single row
    /// (`0.0` disables clipping). Healthy training sits orders of
    /// magnitude below a sane ceiling, so clipping only engages when a
    /// run is diverging — it bounds the damage a bad learning rate or a
    /// poisoned record can do before the divergence detector restores a
    /// checkpoint.
    pub grad_clip: f32,
}

impl Default for SgdParams {
    fn default() -> Self {
        // The paper's settings (§6.1.3): η = 0.02, K = 1. Clipping is off
        // by default so baselines reproduce the paper's updates verbatim;
        // the ACTOR pipeline opts in through `ActorConfig::grad_clip`.
        Self {
            learning_rate: 0.02,
            negatives: 1,
            grad_clip: 0.0,
        }
    }
}

/// Scales the logit-gradient `g` down so the update `g · x` applied to a
/// row keeps an L2 norm at most `clip` (`x_norm` = ‖x‖).
#[inline]
fn clip_logit_grad(g: f32, x_norm: f32, clip: f32) -> f32 {
    let mag = g.abs() * x_norm;
    if mag > clip {
        g * (clip / mag)
    } else {
        g
    }
}

/// Reusable update state (scratch buffers + σ table), one per worker
/// thread.
#[derive(Debug, Clone)]
pub struct NegativeSamplingUpdate {
    sigmoid: SigmoidTable,
    grad: Vec<f32>,
    /// Bag-sum scratch for [`NegativeSamplingUpdate::step_bag`]; a field
    /// rather than a local so the hot loop allocates nothing per call.
    bag_sum: Vec<f32>,
    params: SgdParams,
    /// Steps taken since the last flush to the `embed.sgd.steps` counter;
    /// batched so the hot loop touches no shared state.
    steps_pending: u64,
}

/// Flush cadence for the step counter: rare enough to stay off the SGD
/// profile, frequent enough for live throughput reporting.
const STEP_FLUSH: u64 = 4096;

thread_local! {
    /// Per-thread handle so flushing skips the registry lock.
    static SGD_STEPS: obs::Counter = obs::counter("embed.sgd.steps");
}

impl NegativeSamplingUpdate {
    /// Creates an updater for vectors of width `dim`.
    pub fn new(dim: usize, params: SgdParams) -> Self {
        Self {
            sigmoid: SigmoidTable::new(),
            grad: vec![0.0; dim],
            bag_sum: vec![0.0; dim],
            params,
            steps_pending: 0,
        }
    }

    #[inline]
    fn note_step(&mut self) {
        self.steps_pending += 1;
        if self.steps_pending == STEP_FLUSH {
            self.flush_steps();
        }
    }

    fn flush_steps(&mut self) {
        if self.steps_pending > 0 {
            SGD_STEPS.with(|c| c.add(self.steps_pending));
            self.steps_pending = 0;
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> SgdParams {
        self.params
    }

    /// Overrides the learning rate (used by trainers that anneal η
    /// linearly over the sample budget, as LINE does).
    pub fn set_learning_rate(&mut self, lr: f32) {
        debug_assert!(lr > 0.0);
        self.params.learning_rate = lr;
    }

    /// Applies one stochastic step for the observed pair
    /// (`center`, `context`), drawing negatives from `sample_negative`.
    ///
    /// Implements Eq. 7 with gradients Eqs. 8–10: the center row
    /// accumulates `Σ g·x'` over the positive and all negatives (Eq. 8 /
    /// Eq. 12) while each context row moves by `g·x` (Eqs. 9–10 / 13–14).
    /// Returns the (approximate) loss contribution for monitoring.
    ///
    /// Races with other threads are accepted per the Hogwild contract of
    /// [`crate::store::Matrix`].
    pub fn step<R, F>(
        &mut self,
        store: &EmbeddingStore,
        center: usize,
        context: usize,
        rng: &mut R,
        mut sample_negative: F,
    ) -> f64
    where
        R: Rng + ?Sized,
        F: FnMut(&mut R) -> usize,
    {
        self.note_step();
        let lr = self.params.learning_rate;
        let clip = self.params.grad_clip;
        self.grad.iter_mut().for_each(|g| *g = 0.0);
        let mut loss = 0.0f64;

        // SAFETY: Hogwild contract — racy f32 rows, see store.rs.
        let x_center = unsafe { store.centers.row_mut_racy(center) };
        // The center row is only written after the pair loop, so its norm
        // is stable for the whole step.
        let center_norm = if clip > 0.0 {
            crate::math::norm(x_center)
        } else {
            0.0
        };

        // Positive pair: label 1.
        {
            let x_ctx = unsafe { store.contexts.row_mut_racy(context) };
            let score = crate::math::dot(x_center, x_ctx);
            let sig = self.sigmoid.value(score);
            let mut g = (1.0 - sig) * lr; // −∂J/∂score · η
            if clip > 0.0 {
                g = clip_logit_grad(g, center_norm, clip);
            }
            loss -= (sig.max(1e-7) as f64).ln();
            crate::math::axpy(g, x_ctx, &mut self.grad);
            crate::math::axpy(g, x_center, x_ctx);
        }

        // Negative pairs: label 0.
        for _ in 0..self.params.negatives {
            let neg = sample_negative(rng);
            if neg == context {
                continue; // drawing the observed context teaches nothing
            }
            let x_neg = unsafe { store.contexts.row_mut_racy(neg) };
            let score = crate::math::dot(x_center, x_neg);
            let sig = self.sigmoid.value(score);
            let mut g = -sig * lr;
            if clip > 0.0 {
                g = clip_logit_grad(g, center_norm, clip);
            }
            loss -= ((1.0 - sig).max(1e-7) as f64).ln();
            crate::math::axpy(g, x_neg, &mut self.grad);
            crate::math::axpy(g, x_center, x_neg);
        }

        self.clip_accumulated_grad();
        crate::math::axpy(1.0, &self.grad, x_center);
        loss
    }

    /// Rescales the accumulated center-row gradient so its L2 norm is at
    /// most `grad_clip` (no-op when clipping is disabled).
    #[inline]
    fn clip_accumulated_grad(&mut self) {
        let clip = self.params.grad_clip;
        if clip > 0.0 {
            let norm = crate::math::norm(&self.grad);
            if norm > clip {
                let scale = clip / norm;
                self.grad.iter_mut().for_each(|g| *g *= scale);
            }
        }
    }

    /// Like [`NegativeSamplingUpdate::step`], but the *center* side is a
    /// bag of vertices whose summed embedding represents the text
    /// (footnote 4). The gradient w.r.t. the sum distributes to every
    /// member of the bag.
    pub fn step_bag<R, F>(
        &mut self,
        store: &EmbeddingStore,
        bag: &[usize],
        context: usize,
        rng: &mut R,
        mut sample_negative: F,
    ) -> f64
    where
        R: Rng + ?Sized,
        F: FnMut(&mut R) -> usize,
    {
        if bag.is_empty() {
            return 0.0;
        }
        self.note_step();
        let dim = store.dim();
        let lr = self.params.learning_rate;
        let clip = self.params.grad_clip;
        self.grad.iter_mut().for_each(|g| *g = 0.0);
        let mut loss = 0.0f64;

        // Materialize the bag sum in the reusable scratch buffer (reads
        // are racy-but-benign).
        debug_assert_eq!(self.bag_sum.len(), dim);
        self.bag_sum.iter_mut().for_each(|x| *x = 0.0);
        for &b in bag {
            crate::math::axpy(1.0, store.centers.row(b), &mut self.bag_sum);
        }
        let sum_norm = if clip > 0.0 {
            crate::math::norm(&self.bag_sum)
        } else {
            0.0
        };

        {
            let x_ctx = unsafe { store.contexts.row_mut_racy(context) };
            let score = crate::math::dot(&self.bag_sum, x_ctx);
            let sig = self.sigmoid.value(score);
            let mut g = (1.0 - sig) * lr;
            if clip > 0.0 {
                g = clip_logit_grad(g, sum_norm, clip);
            }
            loss -= (sig.max(1e-7) as f64).ln();
            crate::math::axpy(g, x_ctx, &mut self.grad);
            crate::math::axpy(g, &self.bag_sum, x_ctx);
        }
        for _ in 0..self.params.negatives {
            let neg = sample_negative(rng);
            if neg == context {
                continue;
            }
            let x_neg = unsafe { store.contexts.row_mut_racy(neg) };
            let score = crate::math::dot(&self.bag_sum, x_neg);
            let sig = self.sigmoid.value(score);
            let mut g = -sig * lr;
            if clip > 0.0 {
                g = clip_logit_grad(g, sum_norm, clip);
            }
            loss -= ((1.0 - sig).max(1e-7) as f64).ln();
            crate::math::axpy(g, x_neg, &mut self.grad);
            crate::math::axpy(g, &self.bag_sum, x_neg);
        }

        self.clip_accumulated_grad();
        for &b in bag {
            let row = unsafe { store.centers.row_mut_racy(b) };
            crate::math::axpy(1.0, &self.grad, row);
        }
        loss
    }
}

impl Drop for NegativeSamplingUpdate {
    fn drop(&mut self) {
        self.flush_steps();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::dot;
    use rand::{rngs::StdRng, SeedableRng};

    fn store(dim: usize) -> EmbeddingStore {
        let mut rng = StdRng::seed_from_u64(7);
        EmbeddingStore::init(6, dim, &mut rng)
    }

    #[test]
    fn positive_pair_score_increases() {
        let s = store(8);
        let mut upd = NegativeSamplingUpdate::new(
            8,
            SgdParams {
                learning_rate: 0.1,
                negatives: 2,
                grad_clip: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let before = dot(s.centers.row(0), s.contexts.row(1));
        for _ in 0..50 {
            upd.step(&s, 0, 1, &mut rng, |r| r.random_range(2..6));
        }
        let after = dot(s.centers.row(0), s.contexts.row(1));
        assert!(after > before, "{before} -> {after}");
        assert!(after > 0.5, "score should grow decisively, got {after}");
    }

    #[test]
    fn negative_scores_decrease() {
        let s = store(8);
        let mut upd = NegativeSamplingUpdate::new(
            8,
            SgdParams {
                learning_rate: 0.1,
                negatives: 1,
                grad_clip: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            upd.step(&s, 0, 1, &mut rng, |_| 2usize);
        }
        let pos = dot(s.centers.row(0), s.contexts.row(1));
        let neg = dot(s.centers.row(0), s.contexts.row(2));
        assert!(pos > 0.0 && neg < 0.0, "pos {pos} neg {neg}");
    }

    #[test]
    fn loss_decreases_over_training() {
        let s = store(8);
        let mut upd = NegativeSamplingUpdate::new(8, SgdParams::default());
        let mut rng = StdRng::seed_from_u64(3);
        let first: f64 = (0..20)
            .map(|_| upd.step(&s, 0, 1, &mut rng, |r| r.random_range(2..6)))
            .sum();
        for _ in 0..500 {
            upd.step(&s, 0, 1, &mut rng, |r| r.random_range(2..6));
        }
        let last: f64 = (0..20)
            .map(|_| upd.step(&s, 0, 1, &mut rng, |r| r.random_range(2..6)))
            .sum();
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn negative_equal_to_context_is_skipped() {
        let s = store(4);
        let mut upd = NegativeSamplingUpdate::new(
            4,
            SgdParams {
                learning_rate: 0.1,
                negatives: 1,
                grad_clip: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(4);
        // Sampling the context itself as negative must not cancel learning.
        for _ in 0..100 {
            upd.step(&s, 0, 1, &mut rng, |_| 1usize);
        }
        assert!(dot(s.centers.row(0), s.contexts.row(1)) > 0.5);
    }

    #[test]
    fn bag_update_moves_all_members() {
        let s = store(8);
        let mut upd = NegativeSamplingUpdate::new(
            8,
            SgdParams {
                learning_rate: 0.1,
                negatives: 1,
                grad_clip: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        let before: Vec<Vec<f32>> = (0..3).map(|i| s.centers.row(i).to_vec()).collect();
        for _ in 0..50 {
            upd.step_bag(&s, &[0, 1, 2], 3, &mut rng, |r| r.random_range(4..6));
        }
        for (i, prev) in before.iter().enumerate() {
            assert_ne!(s.centers.row(i), prev.as_slice(), "member {i} unmoved");
        }
        // The bag sum aligns with the context.
        let mut sum = vec![0.0f32; 8];
        for i in 0..3 {
            crate::math::axpy(1.0, s.centers.row(i), &mut sum);
        }
        assert!(dot(&sum, s.contexts.row(3)) > 0.5);
    }

    #[test]
    fn empty_bag_is_noop() {
        let s = store(4);
        let mut upd = NegativeSamplingUpdate::new(4, SgdParams::default());
        let mut rng = StdRng::seed_from_u64(6);
        let loss = upd.step_bag(&s, &[], 1, &mut rng, |_| 0usize);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn grad_clip_bounds_per_step_row_movement() {
        // An absurd learning rate makes every raw update enormous; with
        // clipping each row may move at most `clip` per step.
        let clip = 0.5f32;
        let s = store(8);
        let mut upd = NegativeSamplingUpdate::new(
            8,
            SgdParams {
                learning_rate: 1e6,
                negatives: 2,
                grad_clip: clip,
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        for step in 0..200 {
            let before: Vec<Vec<f32>> = (0..6)
                .map(|i| s.centers.row(i).to_vec())
                .chain((0..6).map(|i| s.contexts.row(i).to_vec()))
                .collect();
            upd.step(&s, step % 4, 4 + (step % 2), &mut rng, |r| {
                r.random_range(0..6)
            });
            let after: Vec<Vec<f32>> = (0..6)
                .map(|i| s.centers.row(i).to_vec())
                .chain((0..6).map(|i| s.contexts.row(i).to_vec()))
                .collect();
            for (b, a) in before.iter().zip(&after) {
                let moved: f32 = b
                    .iter()
                    .zip(a)
                    .map(|(x, y)| (y - x) * (y - x))
                    .sum::<f32>()
                    .sqrt();
                // Context rows can take one clipped update per pair in the
                // step (positive + K negatives can hit the same row), so
                // allow (1 + K) × clip with float slack.
                assert!(
                    moved <= 3.0 * clip * 1.001,
                    "step {step}: row moved {moved}, clip {clip}"
                );
                assert!(a.iter().all(|x| x.is_finite()));
            }
        }
    }

    #[test]
    fn grad_clip_keeps_bag_updates_finite_under_huge_lr() {
        let s = store(8);
        let mut upd = NegativeSamplingUpdate::new(
            8,
            SgdParams {
                learning_rate: 1e5,
                negatives: 3,
                grad_clip: 1.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(10);
        for step in 0..500 {
            upd.step_bag(&s, &[0, 1, 2], 3 + (step % 3), &mut rng, |r| {
                r.random_range(0..6)
            });
        }
        for i in 0..6 {
            assert!(s.centers.row(i).iter().all(|x| x.is_finite()), "row {i}");
            assert!(s.contexts.row(i).iter().all(|x| x.is_finite()), "row {i}");
        }
    }

    #[test]
    fn zero_clip_matches_unclipped_updates_exactly() {
        // grad_clip = 0.0 must be byte-for-byte the historical behavior;
        // compare against a copy trained with a clip too large to engage.
        let a = store(8);
        let b = store(8);
        let mut upd_a = NegativeSamplingUpdate::new(
            8,
            SgdParams {
                learning_rate: 0.05,
                negatives: 2,
                grad_clip: 0.0,
            },
        );
        let mut upd_b = NegativeSamplingUpdate::new(
            8,
            SgdParams {
                learning_rate: 0.05,
                negatives: 2,
                grad_clip: 1e30,
            },
        );
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for step in 0..300 {
            let la = upd_a.step(&a, step % 4, 4 + (step % 2), &mut rng_a, |r| {
                r.random_range(0..6)
            });
            let lb = upd_b.step(&b, step % 4, 4 + (step % 2), &mut rng_b, |r| {
                r.random_range(0..6)
            });
            assert_eq!(la, lb);
        }
        for i in 0..6 {
            assert_eq!(a.centers.row(i), b.centers.row(i));
            assert_eq!(a.contexts.row(i), b.contexts.row(i));
        }
    }

    #[test]
    fn vectors_stay_finite() {
        let s = store(8);
        let mut upd = NegativeSamplingUpdate::new(
            8,
            SgdParams {
                learning_rate: 0.5, // aggressive
                negatives: 3,
                grad_clip: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(8);
        for step in 0..2000 {
            let c = step % 4;
            let ctx = 4 + (step % 2);
            upd.step(&s, c, ctx, &mut rng, |r| r.random_range(0..6));
        }
        for i in 0..6 {
            assert!(s.centers.row(i).iter().all(|x| x.is_finite()));
            assert!(s.contexts.row(i).iter().all(|x| x.is_finite()));
        }
    }
}
