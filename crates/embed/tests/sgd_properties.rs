//! Property tests for the SGD engine: finiteness, direction of updates,
//! and Hogwild equivalence bounds on tiny problems.

use embed::math::dot;
use embed::{EmbeddingStore, NegativeSamplingUpdate, SgdParams};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A single positive step never decreases the positive pair's score
    /// when the negative hits a different row.
    #[test]
    fn positive_step_is_monotone(
        seed in 0u64..500,
        dim in 4usize..32,
        lr in 0.001f32..0.3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let store = EmbeddingStore::init(4, dim, &mut rng);
        let mut upd = NegativeSamplingUpdate::new(dim, SgdParams {
            learning_rate: lr,
            negatives: 1,
            grad_clip: 0.0,
        });
        let before = dot(store.centers.row(0), store.contexts.row(1));
        upd.step(&store, 0, 1, &mut rng, |_| 2usize);
        let after = dot(store.centers.row(0), store.contexts.row(1));
        prop_assert!(after >= before - 1e-6, "{before} -> {after}");
    }

    /// Training keeps every parameter finite for any sane configuration.
    #[test]
    fn training_stays_finite(
        seed in 0u64..200,
        lr in 0.001f32..0.5,
        negatives in 1usize..6,
        steps in 10usize..400,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let store = EmbeddingStore::init(8, 16, &mut rng);
        let mut upd = NegativeSamplingUpdate::new(16, SgdParams {
            learning_rate: lr,
            negatives,
            grad_clip: 0.0,
        });
        for i in 0..steps {
            let c = i % 4;
            let ctx = 4 + (i % 4);
            upd.step(&store, c, ctx, &mut rng, |r| {
                use rand::Rng;
                r.random_range(0..8)
            });
        }
        for i in 0..8 {
            prop_assert!(store.centers.row(i).iter().all(|x| x.is_finite()));
            prop_assert!(store.contexts.row(i).iter().all(|x| x.is_finite()));
        }
    }

    /// The bag update is exactly the plain update when the bag has one
    /// member.
    #[test]
    fn singleton_bag_equals_plain_step(seed in 0u64..200) {
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let store_a = {
            let mut r = StdRng::seed_from_u64(seed ^ 1);
            EmbeddingStore::init(5, 8, &mut r)
        };
        let store_b = store_a.clone();
        let params = SgdParams { learning_rate: 0.1, negatives: 2, grad_clip: 0.0 };
        let mut upd_a = NegativeSamplingUpdate::new(8, params);
        let mut upd_b = NegativeSamplingUpdate::new(8, params);
        let la = upd_a.step(&store_a, 0, 1, &mut rng_a, |_| 3usize);
        let lb = upd_b.step_bag(&store_b, &[0], 1, &mut rng_b, |_| 3usize);
        prop_assert!((la - lb).abs() < 1e-9);
        for i in 0..5 {
            prop_assert_eq!(store_a.centers.row(i), store_b.centers.row(i));
            prop_assert_eq!(store_a.contexts.row(i), store_b.contexts.row(i));
        }
    }
}

/// Hogwild with disjoint rows is exact; with shared rows it still
/// converges to positive scores (smoke-level stress of the unsafe code).
#[test]
fn hogwild_stress_shared_rows() {
    let mut rng = StdRng::seed_from_u64(9);
    let store = EmbeddingStore::init(8, 32, &mut rng);
    embed::hogwild::run(4, 40_000, 9, |_, rng, n| {
        let mut upd = NegativeSamplingUpdate::new(
            32,
            SgdParams {
                learning_rate: 0.05,
                negatives: 2,
                grad_clip: 0.0,
            },
        );
        for _ in 0..n {
            // All threads hammer the same hot pair (0,1).
            upd.step(&store, 0, 1, rng, |r| {
                use rand::Rng;
                r.random_range(2..8)
            });
        }
    });
    let score = dot(store.centers.row(0), store.contexts.row(1));
    assert!(score > 1.0, "shared-row hogwild failed to learn: {score}");
    for i in 0..8 {
        assert!(store.centers.row(i).iter().all(|x| x.is_finite()));
    }
}
